// Package nesterov implements the accelerated first-order optimizer of
// ePlace (Lu et al., TODAES 2015) used to solve the placement objective
// (paper Sec. II-A, Eq. 5): Nesterov's method with the a_k momentum sequence
// and a backtracking-free Lipschitz step-size estimate from successive
// preconditioned gradients.
package nesterov

import (
	"fmt"
	"math"
)

// Objective is the function being minimized. Eval writes the gradient at x
// into grad (overwriting it) and returns the objective value. Precondition
// rescales a raw gradient in place (ePlace divides by vertex degree + λ·area).
// Clamp projects a candidate point back into the feasible box.
type Objective interface {
	Eval(x []float64, grad []float64) float64
	Precondition(grad []float64)
	Clamp(x []float64)
}

// Optimizer carries the Nesterov state across iterations for a fixed
// dimension n.
type Optimizer struct {
	// StepMin and StepMax clamp the Lipschitz step estimate.
	StepMin, StepMax float64

	// OnStep, when non-nil, is invoked at the end of every Step with the
	// 0-based cumulative step index (monotone across Resets), the objective
	// value observed at the reference point and the step size used. The
	// telemetry layer hangs off this; a nil hook adds no overhead and no
	// allocations to the step.
	OnStep func(iter int, val, step float64)

	steps int // cumulative Step calls

	n     int
	a     float64
	u     []float64 // main sequence
	v     []float64 // reference (lookahead) sequence
	vPrev []float64
	gPrev []float64 // preconditioned gradient at vPrev
	g     []float64
	first bool
	step0 float64
	// stepScale multiplies every step estimate (1 = no scaling). The guard
	// layer's divergence recovery shrinks it via ShrinkStep; it is iteration
	// state (serialized in State) because the retried trajectory depends on
	// it.
	stepScale float64
}

// New creates an optimizer for an n-dimensional problem starting at x0
// (copied), with initial step size step0.
func New(x0 []float64, step0 float64) *Optimizer {
	n := len(x0)
	o := &Optimizer{
		StepMin:   1e-8,
		StepMax:   math.Inf(1),
		n:         n,
		a:         1,
		u:         append([]float64(nil), x0...),
		v:         append([]float64(nil), x0...),
		vPrev:     make([]float64, n),
		gPrev:     make([]float64, n),
		g:         make([]float64, n),
		first:     true,
		step0:     step0,
		stepScale: 1,
	}
	return o
}

// X returns the current reference point (the iterate at which gradients are
// evaluated; also the point callers should read placements from during the
// run). The returned slice aliases internal state — do not modify.
func (o *Optimizer) X() []float64 { return o.v }

// U returns the main-sequence iterate (the converged solution when the run
// stops). Aliases internal state.
func (o *Optimizer) U() []float64 { return o.u }

// Reset re-anchors the optimizer at x0 (e.g. after the problem changed
// discontinuously — new inflation ratios or congestion maps), restarting the
// momentum sequence.
func (o *Optimizer) Reset(x0 []float64) {
	copy(o.u, x0)
	copy(o.v, x0)
	o.a = 1
	o.first = true
}

// Step performs one Nesterov iteration and returns the objective value
// observed at the reference point, together with the step size used.
func (o *Optimizer) Step(obj Objective) (val, step float64) {
	val = obj.Eval(o.v, o.g)
	obj.Precondition(o.g)

	if o.first {
		step = o.step0 * o.stepScale
		o.first = false
	} else {
		// Inverse local Lipschitz constant: |Δv| / |Δg|.
		var dv, dg float64
		for i := 0; i < o.n; i++ {
			d := o.v[i] - o.vPrev[i]
			dv += d * d
			e := o.g[i] - o.gPrev[i]
			dg += e * e
		}
		if dg > 0 {
			step = math.Sqrt(dv / dg)
		} else {
			step = o.step0
		}
		step *= o.stepScale
		if step < o.StepMin {
			step = o.StepMin
		}
		if step > o.StepMax {
			step = o.StepMax
		}
	}

	copy(o.vPrev, o.v)
	copy(o.gPrev, o.g)

	// u_{k+1} = v_k − α·g ; a_{k+1} ; v_{k+1} = u_{k+1} + ((a_k−1)/a_{k+1})(u_{k+1} − u_k)
	aNew := (1 + math.Sqrt(4*o.a*o.a+1)) / 2
	coef := (o.a - 1) / aNew
	for i := 0; i < o.n; i++ {
		uNew := o.v[i] - step*o.g[i]
		o.v[i] = uNew + coef*(uNew-o.u[i])
		o.u[i] = uNew
	}
	obj.Clamp(o.u)
	obj.Clamp(o.v)
	o.a = aNew
	o.steps++
	if o.OnStep != nil {
		o.OnStep(o.steps-1, val, step)
	}
	return val, step
}

// Steps returns the cumulative number of Step calls (across Resets).
func (o *Optimizer) Steps() int { return o.steps }

// ShrinkStep multiplies the optimizer's step estimate by f from now on:
// the initial step and every Lipschitz estimate are scaled by the cumulative
// product of all ShrinkStep calls. The guard layer's divergence recovery
// calls this after rolling back to a last-good snapshot so the retried
// trajectory takes smaller steps. Scaling is iteration state: it is carried
// in State and therefore survives snapshots and checkpoints.
func (o *Optimizer) ShrinkStep(f float64) { o.stepScale *= f }

// StepScale returns the cumulative step-scale factor (1 when never shrunk).
func (o *Optimizer) StepScale() float64 { return o.stepScale }

// State is a complete serializable snapshot of the optimizer's iteration
// state (everything Step reads besides the Objective): the momentum scalar,
// the first-step flag, the cumulative step count and the four iterate
// vectors. StepMin/StepMax/step0 are construction parameters, not state —
// a restorer rebuilds the optimizer with the same construction inputs and
// then applies a State.
type State struct {
	A     float64
	First bool
	Steps int
	// Scale is the cumulative ShrinkStep factor (1 when never shrunk; a
	// zero value is mapped to 1 by SetState for hand-built states).
	Scale float64
	U     []float64
	V     []float64
	VPrev []float64
	GPrev []float64
}

// State returns a deep copy of the optimizer's iteration state.
func (o *Optimizer) State() State {
	return State{
		A:     o.a,
		First: o.first,
		Steps: o.steps,
		Scale: o.stepScale,
		U:     append([]float64(nil), o.u...),
		V:     append([]float64(nil), o.v...),
		VPrev: append([]float64(nil), o.vPrev...),
		GPrev: append([]float64(nil), o.gPrev...),
	}
}

// StateInto is State without the allocations: it copies the iteration state
// into s, reusing s's vectors when their lengths match. The guard layer's
// rolling last-good snapshot calls this every few optimizer steps.
func (o *Optimizer) StateInto(s *State) {
	s.A = o.a
	s.First = o.first
	s.Steps = o.steps
	s.Scale = o.stepScale
	s.U = append(s.U[:0], o.u...)
	s.V = append(s.V[:0], o.v...)
	s.VPrev = append(s.VPrev[:0], o.vPrev...)
	s.GPrev = append(s.GPrev[:0], o.gPrev...)
}

// SetState overwrites the optimizer's iteration state with a snapshot taken
// from an optimizer of the same dimension. The next Step then behaves
// bitwise-identically to the step the snapshotted optimizer would have
// taken.
func (o *Optimizer) SetState(s State) error {
	if len(s.U) != o.n || len(s.V) != o.n || len(s.VPrev) != o.n || len(s.GPrev) != o.n {
		return fmt.Errorf("nesterov: state dimension %d does not match optimizer dimension %d",
			len(s.U), o.n)
	}
	o.a = s.A
	o.first = s.First
	o.steps = s.Steps
	o.stepScale = s.Scale
	if o.stepScale == 0 {
		// A zero scale would freeze the optimizer; it can only come from a
		// hand-built State that predates the field. Treat it as "unscaled".
		o.stepScale = 1
	}
	copy(o.u, s.U)
	copy(o.v, s.V)
	copy(o.vPrev, s.VPrev)
	copy(o.gPrev, s.GPrev)
	return nil
}

// GradNorm returns the L2 norm of the last preconditioned gradient.
func (o *Optimizer) GradNorm() float64 {
	var s float64
	for _, g := range o.gPrev {
		s += g * g
	}
	return math.Sqrt(s)
}
