package dashboard

// pageHTML is the entire dashboard UI: no external assets, no frameworks —
// the page must render from a placer running on an air-gapped box. The
// server substitutes {{TITLE}} (header text, HTML-escaped) and {{DIFF}}
// (a JSON string literal holding the optional A/B diff report).
//
// The JS consumes the same JSONL events as cmd/tracereport:
//   - "snap" events build the convergence charts (one chart per series
//     field: HPWL, overflow, λ, γ, …)
//   - "span_start"/"span_end" rebuild the span tree for the stage-timing
//     flamegraph
//   - "grid" events drive the congestion heatmap animation (frames are
//     fetched as PNG from /heatmap, rendered server-side by the same
//     renderer as cmd/plot)
//   - "log" events whose message starts with "guard:" become event markers
//     on the charts; other logs fill the log panel
//   - "metric" events fill the metrics table; the route-cache hit-rate is
//     derived from route.decompose_cache_hits / (hits + route.dirty_nets)
const pageHTML = `<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>placer dashboard</title>
<style>
  body { font: 13px/1.4 system-ui, sans-serif; margin: 0; background: #14171c; color: #d8dce3; }
  h1 { font-size: 16px; margin: 0; font-weight: 600; }
  h2 { font-size: 13px; margin: 0 0 6px; color: #9aa3b0; font-weight: 600; text-transform: uppercase; letter-spacing: .05em; }
  header { display: flex; align-items: baseline; gap: 16px; padding: 10px 16px; background: #1b1f26; border-bottom: 1px solid #2a303a; }
  #status { color: #9aa3b0; }
  #status.live::before { content: "●"; color: #4cc38a; margin-right: 5px; }
  #status.done::before { content: "●"; color: #9aa3b0; margin-right: 5px; }
  main { display: grid; grid-template-columns: 1fr 1fr; gap: 14px; padding: 14px 16px; }
  section { background: #1b1f26; border: 1px solid #2a303a; border-radius: 6px; padding: 10px 12px; }
  .wide { grid-column: 1 / -1; }
  canvas.chart { width: 100%; height: 110px; display: block; }
  .chartrow { margin-bottom: 8px; }
  .chartrow .lbl { color: #9aa3b0; font-size: 11px; display: flex; justify-content: space-between; }
  #flame div { position: relative; height: 16px; margin: 1px 0; }
  #flame span { position: absolute; top: 0; bottom: 0; overflow: hidden; white-space: nowrap;
                font-size: 11px; padding: 1px 4px; box-sizing: border-box; border-radius: 2px;
                background: #31518a; color: #cfe0ff; }
  table { border-collapse: collapse; width: 100%; }
  td, th { text-align: left; padding: 1px 10px 1px 0; font-variant-numeric: tabular-nums; }
  th { color: #9aa3b0; font-weight: 500; }
  td.num { text-align: right; }
  #heatimg { image-rendering: pixelated; width: 100%; max-width: 512px; border: 1px solid #2a303a; }
  #logs, #diff { white-space: pre-wrap; font: 11px/1.5 ui-monospace, monospace; max-height: 220px;
                 overflow-y: auto; color: #aeb6c2; }
  .guard { color: #e5a13c; }
  input[type=range] { width: 60%; vertical-align: middle; }
  button { background: #2a303a; color: #d8dce3; border: 1px solid #3a4250; border-radius: 4px;
           padding: 2px 10px; cursor: pointer; }
</style>
</head>
<body>
<header>
  <h1>{{TITLE}}</h1>
  <span id="status" class="live">connecting…</span>
  <span id="dropinfo"></span>
</header>
<main>
  <section class="wide"><h2>Convergence</h2><div id="charts"></div></section>
  <section><h2>Congestion heatmap</h2>
    <img id="heatimg" alt="no congestion frames yet">
    <div>
      <input type="range" id="heatslider" min="0" max="0" value="0">
      <button id="heatplay">▶</button>
      <span id="heatlabel"></span>
    </div>
  </section>
  <section><h2>Stage timing</h2><div id="flame"></div></section>
  <section><h2>Metrics</h2><div id="metrics"></div></section>
  <section><h2>Log <span id="guardcount"></span></h2><div id="logs"></div></section>
  <section class="wide" id="diffsec" hidden><h2>Trace diff (A/B)</h2><div id="diff"></div></section>
</main>
<script>
"use strict";
const diffText = {{DIFF}};
if (diffText) {
  document.getElementById("diffsec").hidden = false;
  document.getElementById("diff").textContent = diffText;
}

// ---- state rebuilt from the event stream -------------------------------
const series = new Map();   // name -> Map(field -> [values])
const markers = [];         // {idx per-series index?, msg} guard events
const gridIters = [];       // iteration numbers that have heatmap frames
const spans = new Map();    // id -> {name, parent, depth, start, dur}
const spanOrder = [];
const metrics = new Map();  // name -> metric event
let eventCount = 0, logLines = 0, guardEvents = 0;

function onEvent(ev) {
  eventCount++;
  switch (ev.ev) {
    case "snap": {
      let s = series.get(ev.name);
      if (!s) { s = new Map(); series.set(ev.name, s); }
      for (const [k, v] of Object.entries(ev.f || {})) {
        let a = s.get(k);
        if (!a) { a = []; s.set(k, a); }
        a.push(v);
      }
      break;
    }
    case "grid":
      if (ev.name === "congestion") gridIters.push(ev.iter);
      break;
    case "span_start": {
      const parent = spans.get(ev.parent);
      const sp = { name: ev.name, depth: parent ? parent.depth + 1 : 0, seq: ev.seq, dur: 0 };
      spans.set(ev.span, sp);
      spanOrder.push(sp);
      break;
    }
    case "span_end": {
      const sp = spans.get(ev.span);
      if (sp) sp.dur = ev.dur_us || 0;
      break;
    }
    case "metric":
      metrics.set(ev.name, ev);
      break;
    case "log":
    case "timing": {
      logLines++;
      const isGuard = (ev.msg || "").startsWith("guard:");
      if (isGuard) {
        guardEvents++;
        // Anchor the marker to the current route-iteration index so the
        // charts can draw a vertical line where the guard fired.
        const ri = series.get("route_iter");
        markers.push({ at: ri ? riLen(ri) : 0, msg: ev.msg });
      }
      appendLog(ev.msg, isGuard);
      break;
    }
  }
}
function riLen(s) { for (const a of s.values()) return a.length; return 0; }

// ---- rendering ---------------------------------------------------------
let dirty = false;
function scheduleRender() {
  if (dirty) return;
  dirty = true;
  requestAnimationFrame(() => { dirty = false; render(); });
}

function render() {
  renderCharts();
  renderFlame();
  renderMetrics();
  renderHeatControls();
  document.getElementById("guardcount").textContent =
    guardEvents ? "(" + guardEvents + " guard events)" : "";
}

const chartDivs = new Map(); // "series/field" -> {canvas, last}
function renderCharts() {
  const host = document.getElementById("charts");
  for (const [name, fields] of series) {
    for (const [field, vals] of fields) {
      const key = name + "/" + field;
      let c = chartDivs.get(key);
      if (!c) {
        const row = document.createElement("div");
        row.className = "chartrow";
        const lbl = document.createElement("div");
        lbl.className = "lbl";
        const left = document.createElement("span");
        left.textContent = key;
        const right = document.createElement("span");
        lbl.append(left, right);
        const canvas = document.createElement("canvas");
        canvas.className = "chart";
        row.append(lbl, canvas);
        host.append(row);
        c = { canvas, right };
        chartDivs.set(key, c);
      }
      c.right.textContent = "last " + fmtNum(vals[vals.length - 1]) + " · n=" + vals.length;
      drawLine(c.canvas, vals, name === "route_iter" ? markers : []);
    }
  }
}

function drawLine(canvas, vals, marks) {
  const w = canvas.clientWidth || 600, h = canvas.clientHeight || 110;
  if (canvas.width !== w) canvas.width = w;
  if (canvas.height !== h) canvas.height = h;
  const ctx = canvas.getContext("2d");
  ctx.clearRect(0, 0, w, h);
  if (!vals.length) return;
  let mn = Math.min(...vals), mx = Math.max(...vals);
  if (mx === mn) { mx = mn + 1; }
  const X = i => vals.length > 1 ? i / (vals.length - 1) * (w - 8) + 4 : w / 2;
  const Y = v => h - 6 - (v - mn) / (mx - mn) * (h - 12);
  for (const m of marks) {
    ctx.strokeStyle = "#e5a13c55";
    ctx.beginPath();
    ctx.moveTo(X(Math.min(m.at, vals.length - 1)), 2);
    ctx.lineTo(X(Math.min(m.at, vals.length - 1)), h - 2);
    ctx.stroke();
  }
  ctx.strokeStyle = "#5b8dd9";
  ctx.lineWidth = 1.5;
  ctx.beginPath();
  vals.forEach((v, i) => i ? ctx.lineTo(X(i), Y(v)) : ctx.moveTo(X(i), Y(v)));
  ctx.stroke();
}

function renderFlame() {
  const host = document.getElementById("flame");
  host.textContent = "";
  const total = spanOrder.length ? Math.max(...spanOrder.map(s => s.dur)) : 0;
  if (!total) return;
  // One bar per span, indented by depth, width ∝ duration of the run root.
  for (const sp of spanOrder.slice(0, 200)) {
    const row = document.createElement("div");
    const bar = document.createElement("span");
    const frac = sp.dur / total;
    bar.style.left = (sp.depth * 3) + "%";
    bar.style.width = Math.max(frac * (100 - sp.depth * 3), 0.5) + "%";
    bar.style.background = ["#31518a", "#3a6a4f", "#7a5a34", "#6a3a5a"][sp.depth % 4];
    bar.textContent = sp.name + " " + fmtDur(sp.dur);
    bar.title = sp.name + " — " + fmtDur(sp.dur);
    row.append(bar);
    host.append(row);
  }
}

function renderMetrics() {
  const host = document.getElementById("metrics");
  const rows = [];
  const hits = num("route.decompose_cache_hits"), dirtyN = num("route.dirty_nets");
  if (hits + dirtyN > 0) {
    rows.push(["route cache hit-rate", (100 * hits / (hits + dirtyN)).toFixed(1) + "%"]);
  }
  const names = [...metrics.keys()].sort();
  for (const name of names) {
    const m = metrics.get(name);
    let v = fmtNum(m.value);
    if (m.kind === "histogram" && m.count > 0) {
      v += "  (n=" + m.count + ", p50=" + fmtNum(m.p50) + ", p95=" + fmtNum(m.p95) +
           ", p99=" + fmtNum(m.p99) + ")";
    }
    rows.push([name + (m.volatile ? " *" : ""), v]);
  }
  host.textContent = "";
  const tbl = document.createElement("table");
  for (const [k, v] of rows) {
    const tr = document.createElement("tr");
    const td1 = document.createElement("td"), td2 = document.createElement("td");
    td1.textContent = k; td2.textContent = v; td2.className = "num";
    tr.append(td1, td2); tbl.append(tr);
  }
  host.append(tbl);
}
function num(name) { const m = metrics.get(name); return m ? m.value : 0; }

// Heatmap animation: frames are PNGs served by /heatmap?iter=K.
const slider = document.getElementById("heatslider");
const heatimg = document.getElementById("heatimg");
const heatlabel = document.getElementById("heatlabel");
let heatPinned = false, playing = null;
slider.addEventListener("input", () => { heatPinned = true; showFrame(+slider.value); });
document.getElementById("heatplay").addEventListener("click", () => {
  if (playing) { clearInterval(playing); playing = null; return; }
  let i = 0;
  heatPinned = true;
  playing = setInterval(() => {
    if (!gridIters.length) return;
    showFrame(i % gridIters.length);
    slider.value = i % gridIters.length;
    i++;
  }, 400);
});
function renderHeatControls() {
  if (!gridIters.length) return;
  slider.max = gridIters.length - 1;
  if (!heatPinned) {
    slider.value = gridIters.length - 1;
    showFrame(gridIters.length - 1);
  }
}
function showFrame(idx) {
  if (idx < 0 || idx >= gridIters.length) return;
  const it = gridIters[idx];
  heatimg.src = "heatmap?iter=" + it + "&t=" + eventCount; // bust cache while live
  heatlabel.textContent = "route iter " + it + " (" + (idx + 1) + "/" + gridIters.length + ")";
}

const logHost = document.getElementById("logs");
function appendLog(msg, isGuard) {
  const line = document.createElement("div");
  line.textContent = msg;
  if (isGuard) line.className = "guard";
  logHost.append(line);
  while (logHost.childElementCount > 500) logHost.firstElementChild.remove();
  logHost.scrollTop = logHost.scrollHeight;
}

function fmtNum(v) {
  if (v === null || v === undefined) return "—";
  if (v !== 0 && (Math.abs(v) >= 1e6 || Math.abs(v) < 1e-3)) return v.toExponential(3);
  return +v.toFixed(4) + "";
}
function fmtDur(us) {
  if (us >= 1e6) return (us / 1e6).toFixed(2) + "s";
  if (us >= 1e3) return (us / 1e3).toFixed(1) + "ms";
  return us + "µs";
}

// ---- SSE wiring --------------------------------------------------------
const status = document.getElementById("status");
const es = new EventSource("events");
es.onopen = () => { status.textContent = "live"; status.className = "live"; };
es.onmessage = e => {
  try { onEvent(JSON.parse(e.data)); } catch (err) { /* skip malformed */ }
  scheduleRender();
};
es.addEventListener("eof", () => {
  status.textContent = "run complete — " + eventCount + " events";
  status.className = "done";
  es.close();
  scheduleRender();
});
es.onerror = () => {
  if (es.readyState === EventSource.CLOSED) return;
  status.textContent = "reconnecting…";
};
</script>
</body>
</html>
`
