package dashboard

import (
	"bufio"
	"bytes"
	"fmt"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

// feedTrace writes a canned trace into a hub, line by line.
func feedTrace(t *testing.T, hub *telemetry.Hub, raw []byte) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := append(append([]byte(nil), sc.Bytes()...), '\n')
		if _, err := hub.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

// smallTrace emits a representative trace: spans, snapshots, a grid frame,
// a guard log line and a metric dump.
func smallTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	o := telemetry.NewObserver(&buf)
	sp := o.StartSpan("place")
	o.Log("guard: recovered from divergence at iter 2")
	for i := 0; i < 3; i++ {
		o.Snapshot("route_iter", i, telemetry.F("hpwl", 100-float64(i)))
		o.Grid("congestion", i, 2, 2, []float64{0.1, 0.9, 0.4, float64(i)})
	}
	sp.End()
	o.Counter("route.calls").Add(3)
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPageServed(t *testing.T) {
	hub := telemetry.NewHub(nil)
	srv := NewServer(hub, "tiny_hot — mode ours")
	srv.SetDiff("Deterministic drift: NONE")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("page status %d", resp.StatusCode)
	}
	page := string(body)
	for _, want := range []string{
		"<!doctype html", "tiny_hot — mode ours", "EventSource",
		"Deterministic drift: NONE", "/heatmap?iter=",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
	// Unknown paths 404 rather than serving the page.
	if resp, err := http.Get(ts.URL + "/nope"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("unknown path status %d, want 404", resp.StatusCode)
		}
	}
}

func TestEventsStreamReplaysBacklogAndEOF(t *testing.T) {
	hub := telemetry.NewHub(nil)
	raw := smallTrace(t)
	feedTrace(t, hub, raw)
	hub.Close() // finished run: SSE must replay everything then signal eof

	ts := httptest.NewServer(NewServer(hub, "t").Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body) // terminates at eof
	if err != nil {
		t.Fatal(err)
	}
	s := string(body)
	wantLines := bytes.Count(bytes.TrimSpace(raw), []byte("\n")) + 1
	if got := strings.Count(s, "data: {\"seq\""); got != wantLines {
		t.Errorf("SSE replayed %d events, want %d", got, wantLines)
	}
	if !strings.Contains(s, "event: eof") {
		t.Errorf("SSE stream missing eof marker:\n%s", s)
	}
}

func TestHeatmapEndpoint(t *testing.T) {
	hub := telemetry.NewHub(nil)
	feedTrace(t, hub, smallTrace(t))
	ts := httptest.NewServer(NewServer(hub, "t").Handler())
	defer ts.Close()

	for _, url := range []string{"/heatmap?iter=1", "/heatmap"} { // explicit and latest
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s status %d", url, resp.StatusCode)
		}
		img, err := png.Decode(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: not a PNG: %v", url, err)
		}
		if b := img.Bounds(); b.Dx() != 16 || b.Dy() != 16 {
			t.Errorf("%s: bounds %v, want 16×16", url, b)
		}
	}
	// Missing frame and bad params.
	for url, want := range map[string]int{
		"/heatmap?iter=99": 404,
		"/heatmap?iter=x":  400,
		"/heatmap?name=no": 404,
	} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s status %d, want %d", url, resp.StatusCode, want)
		}
	}
}

// TestPlaceWithDashboardCanonicalIdentity is the tentpole invariant, end to
// end: a real placement with the dashboard serving and a deliberately slow
// subscriber attached produces a byte-identical canonical trace to a plain
// run, drops are counted, and no goroutines outlive Place.
func TestPlaceWithDashboardCanonicalIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	opts := func() core.Options {
		return core.Options{
			Mode:              core.ModeOurs,
			Tech:              core.AllTechniques(),
			GridHint:          32,
			MaxWLIters:        120,
			MaxRouteIters:     6,
			StepsPerRouteIter: 8,
		}
	}

	// Reference run: plain buffer sink, no streaming.
	runPlain := func() []byte {
		d := synth.MustGenerate("tiny_hot")
		var trace bytes.Buffer
		obs := telemetry.NewObserver(&trace)
		opt := opts()
		opt.Observer = obs
		if _, err := core.Place(d, opt); err != nil {
			t.Fatal(err)
		}
		if err := obs.Flush(); err != nil {
			t.Fatal(err)
		}
		return trace.Bytes()
	}
	plain := runPlain()

	baseline := testutil.GoroutineBaseline()

	// Streamed run: hub + dashboard server + a one-slot subscriber that
	// never drains (the pathological client).
	d := synth.MustGenerate("tiny_hot")
	var trace bytes.Buffer
	hub := telemetry.NewHub(&trace)
	_, stuck := hub.Subscribe(1)
	ts := httptest.NewServer(NewServer(hub, "tiny_hot").Handler())
	obs := telemetry.NewObserver(hub)
	opt := opts()
	opt.Observer = obs
	if _, err := core.Place(d, opt); err != nil {
		t.Fatal(err)
	}
	// Mirror cmd/placer: record the drop count as a volatile gauge before
	// the metric dump, then flush and close.
	obs.VolatileGauge("telemetry.dropped_events").Set(float64(hub.Dropped()))
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}
	hub.Close()

	// A trace big enough to overflow the one-slot channel must have drops.
	if hub.Dropped() == 0 {
		t.Error("stuck subscriber dropped nothing; drop accounting broken")
	}
	if stuck.Dropped() == 0 {
		t.Error("per-subscription drop count empty")
	}

	// Hard invariant: canonical traces byte-identical.
	c1, err := telemetry.StripTimings(plain)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := telemetry.StripTimings(trace.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		a := strings.Split(string(c1), "\n")
		b := strings.Split(string(c2), "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("canonical traces diverge at line %d:\n  plain:    %s\n  streamed: %s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("canonical traces differ in length: %d vs %d lines", len(a), len(b))
	}

	// The dashboard still serves the finished run.
	resp, err := http.Get(ts.URL + "/heatmap")
	if err != nil {
		t.Fatal(err)
	}
	ok := resp.StatusCode == 200
	resp.Body.Close()
	if !ok {
		t.Errorf("heatmap unavailable after run: %d", resp.StatusCode)
	}

	// No goroutines may outlive the run once the server shuts down.
	ts.Close()
	testutil.AssertNoGoroutineLeak(t, baseline)
}

func TestSSEClientSeesLiveTail(t *testing.T) {
	hub := telemetry.NewHub(nil)
	hub.Write([]byte(`{"seq":0,"ev":"log","msg":"before"}` + "\n"))
	ts := httptest.NewServer(NewServer(hub, "t").Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rd := bufio.NewReader(resp.Body)
	readEvent := func() string {
		var sb strings.Builder
		for {
			line, err := rd.ReadString('\n')
			if err != nil {
				t.Fatalf("SSE read: %v (got %q)", err, sb.String())
			}
			if line == "\n" {
				return sb.String()
			}
			sb.WriteString(line)
		}
	}
	if ev := readEvent(); !strings.Contains(ev, "before") {
		t.Fatalf("backlog event missing: %q", ev)
	}
	// A line written AFTER the subscription must arrive live.
	if _, err := fmt.Fprintf(hub, `{"seq":1,"ev":"log","msg":"after"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	if ev := readEvent(); !strings.Contains(ev, "after") {
		t.Fatalf("live event missing: %q", ev)
	}
	hub.Close()
	if ev := readEvent(); !strings.Contains(ev, "event: eof") {
		t.Fatalf("eof event missing: %q", ev)
	}
}
