// Package dashboard serves the live observability UI: one self-contained
// HTML page (page.go) fed by the JSONL telemetry stream of a
// telemetry.Hub over Server-Sent Events.
//
// The server is strictly read-only with respect to the run: it subscribes
// to the hub like any other consumer, so a slow or stuck browser tab can
// only ever lose ITS OWN events (counted by the hub), never slow the
// placement or change the canonical trace. All handlers run on net/http's
// connection goroutines — the dashboard spawns no goroutines of its own,
// so a placement run with `-serve` leaks nothing once its listener closes.
//
// Endpoints:
//
//	/             the dashboard page
//	/events       SSE: full backlog replay, then the live tail; one JSONL
//	              trace event per SSE message, `event: eof` at hub close
//	/heatmap?iter=K[&name=N]
//	              the congestion grid of route iteration K as PNG
//	              (shared renderer: internal/plot.WriteHeatmapPNG)
//
// The page references its endpoints by relative URL, so the whole handler
// can be mounted under a path prefix (http.StripPrefix) — the job server
// serves one dashboard per job at /jobs/{id}/dashboard/.
package dashboard

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/plot"
	"repro/internal/telemetry"
)

// Server serves the dashboard for one telemetry stream.
type Server struct {
	hub   *telemetry.Hub
	title string
	diff  string // optional A/B diff report text, shown in its own panel
}

// NewServer creates a dashboard over hub. title is shown in the page
// header (typically the design/mode under placement, or the trace file
// being replayed).
func NewServer(hub *telemetry.Hub, title string) *Server {
	return &Server{hub: hub, title: title}
}

// SetDiff attaches a trace-diff report (report.Diff.WriteReport output) to
// the page's A/B panel. Call before serving.
func (s *Server) SetDiff(text string) { s.diff = text }

// Handler returns the dashboard's http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.servePage)
	mux.HandleFunc("/events", s.serveEvents)
	mux.HandleFunc("/heatmap", s.serveHeatmap)
	return mux
}

func (s *Server) servePage(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	page := strings.Replace(pageHTML, "{{TITLE}}", html.EscapeString(s.title), 1)
	diffJSON, _ := json.Marshal(s.diff) // JS string literal, "" when unset
	page = strings.Replace(page, "{{DIFF}}", string(diffJSON), 1)
	fmt.Fprint(w, page)
}

// serveEvents streams the trace over SSE: the backlog first (a dashboard
// tab opened mid-run, or a replay of a finished trace, sees the complete
// stream), then the live tail until the hub closes or the client leaves.
func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	send := func(line []byte) bool {
		// Trace lines carry their own trailing newline; SSE frames are
		// "data: <json>\n\n".
		if _, err := fmt.Fprintf(w, "data: %s\n\n", trimNewline(line)); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	backlog, sub := s.hub.Subscribe(1024)
	defer sub.Close()
	for _, line := range backlog {
		if !send(line) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case line, ok := <-sub.C():
			if !ok {
				// Hub closed: the run is over and the stream is complete.
				fmt.Fprint(w, "event: eof\ndata: {}\n\n")
				fl.Flush()
				return
			}
			if !send(line) {
				return
			}
		}
	}
}

// serveHeatmap renders one congestion grid frame as PNG. It scans the
// hub's backlog lazily — grid events are rare (one per route iteration)
// and small, so no index is kept.
func (s *Server) serveHeatmap(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "congestion"
	}
	wantIter := -1 // default: latest frame
	if q := r.URL.Query().Get("iter"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			http.Error(w, "bad iter", http.StatusBadRequest)
			return
		}
		wantIter = v
	}
	var frame *gridFrame
	for _, line := range s.hub.Backlog() {
		g, ok := parseGrid(line, name)
		if !ok {
			continue
		}
		if g.Iter == wantIter || wantIter == -1 {
			frame = &g // latest match wins for -1; exact match keeps last too
			if g.Iter == wantIter {
				break
			}
		}
	}
	if frame == nil {
		http.NotFound(w, r)
		return
	}
	vals := telemetry.DecodeGridValues(frame.Data, frame.Max)
	w.Header().Set("Content-Type", "image/png")
	if err := plot.WriteHeatmapPNG(w, vals, frame.NX, frame.NY, 8); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// gridFrame is the subset of a "grid" trace event the heatmap needs.
type gridFrame struct {
	Ev   string  `json:"ev"`
	Name string  `json:"name"`
	Iter int     `json:"iter"`
	NX   int     `json:"nx"`
	NY   int     `json:"ny"`
	Max  float64 `json:"max"`
	Data string  `json:"data"`
}

func parseGrid(line []byte, name string) (gridFrame, bool) {
	var g gridFrame
	if err := json.Unmarshal(line, &g); err != nil {
		return g, false
	}
	if g.Ev != "grid" || g.Name != name || g.NX <= 0 || g.NY <= 0 || len(g.Data) != g.NX*g.NY {
		return g, false
	}
	return g, true
}

func trimNewline(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}
