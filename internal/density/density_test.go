package density

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// clusterDesign puts n cells in a tight cluster at the die center.
func clusterDesign(t testing.TB, n int) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("cluster", geom.NewRect(0, 0, 256, 256), 8, 1)
	for i := 0; i < n; i++ {
		x := 120 + float64(i%4)*2
		y := 120 + float64(i/4)*2
		b.AddCell("c", netlist.StdCell, x, y, 2, 8)
	}
	b.SetTargetDensity(0.5)
	return b.MustBuild()
}

func TestFieldPushesClusterApart(t *testing.T) {
	d := clusterDesign(t, 64)
	m := New(d, 32)
	m.Compute()
	// Cells on the cluster's left edge must feel a leftward force (gradient
	// positive → descent moves them left... gradient of D wrt x is −A·Ex, and
	// descent direction is −grad = +A·Ex; Ex points away from density peak).
	left := 0 // cell at (120,120): left-bottom corner of cluster
	ex, _ := m.Field(d.Cells[left].X, d.Cells[left].Y)
	if ex >= 0 {
		t.Errorf("left-edge cell feels Ex=%v, want negative (pointing left, away from cluster)", ex)
	}
	right := 3 // cell at (126,120): right edge of first row
	ex2, _ := m.Field(d.Cells[right].X+1, d.Cells[right].Y)
	if ex2 <= 0 {
		t.Errorf("right-edge probe feels Ex=%v, want positive", ex2)
	}
}

func TestPenaltyDecreasesWhenSpread(t *testing.T) {
	d := clusterDesign(t, 64)
	m := New(d, 32)
	m.Compute()
	before := m.Penalty()

	// Spread the same cells over a 4x larger region.
	for i := range d.Cells {
		c := &d.Cells[i]
		c.X = 64 + float64(i%8)*16
		c.Y = 64 + float64(i/8)*16
	}
	m.Compute()
	after := m.Penalty()
	if after >= before {
		t.Errorf("penalty did not decrease on spreading: before %v after %v", before, after)
	}
}

func TestOverflowDropsWhenSpread(t *testing.T) {
	d := clusterDesign(t, 64)
	m := New(d, 32)
	m.Compute()
	before := m.Overflow()
	for i := range d.Cells {
		c := &d.Cells[i]
		c.X = 20 + float64(i%8)*28
		c.Y = 20 + float64(i/8)*28
	}
	m.Compute()
	after := m.Overflow()
	if before <= after {
		t.Errorf("overflow did not drop: clustered %v spread %v", before, after)
	}
	if after < 0 || before < 0 {
		t.Errorf("negative overflow")
	}
}

func TestGradientMatchesPenaltyFiniteDifference(t *testing.T) {
	// The analytic gradient −A·E must roughly match finite differences of
	// the penalty (the field itself is exact; interpolation introduces small
	// error, so tolerances are loose).
	d := clusterDesign(t, 16)
	m := New(d, 32)
	m.Compute()
	grad := make([]float64, 2*len(d.Cells))
	m.AccumCellGrad(grad, 1)

	ci := 0
	const h = 0.5
	eval := func() float64 {
		m.Compute()
		return m.Penalty()
	}
	d.Cells[ci].X += h
	fp := eval()
	d.Cells[ci].X -= 2 * h
	fm := eval()
	d.Cells[ci].X += h
	m.Compute()
	fd := (fp - fm) / (2 * h)
	// Sign and order of magnitude must agree.
	if math.Signbit(fd) != math.Signbit(grad[2*ci]) && math.Abs(fd) > 1e-6 {
		t.Errorf("gradient sign mismatch: analytic %v, finite-diff %v", grad[2*ci], fd)
	}
}

func TestInflationIncreasesLocalDensity(t *testing.T) {
	// Use a target density low enough that no fillers are created, so the
	// density map contains only the real cells.
	b := netlist.NewBuilder("nofill", geom.NewRect(0, 0, 256, 256), 8, 1)
	for i := 0; i < 32; i++ {
		b.AddCell("c", netlist.StdCell, 120+float64(i%4)*2, 120+float64(i/4)*2, 2, 8)
	}
	b.SetTargetDensity(0.005)
	d := b.MustBuild()
	m := New(d, 32)
	if m.NumFillers() != 0 {
		t.Fatalf("expected no fillers, got %d", m.NumFillers())
	}
	m.Compute()
	base := m.CellDensityMap()
	for i := range d.Cells {
		m.SetInflation(i, 2.0)
	}
	m.Compute()
	inflated := m.CellDensityMap()
	var sumB, sumI float64
	for i := range base {
		sumB += base[i]
		sumI += inflated[i]
	}
	ratio := sumI / sumB
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("inflating all cells 2x changed cell area by %v, want ~2x", ratio)
	}
	if m.Inflation(0) != 2.0 {
		t.Errorf("Inflation getter wrong")
	}
}

func TestSetInflationsLengthChecked(t *testing.T) {
	d := clusterDesign(t, 4)
	m := New(d, 16)
	if err := m.SetInflations([]float64{1}); err == nil {
		t.Errorf("SetInflations with bad length did not error")
	}
	if err := m.SetPGDensity([]float64{1, 2}); err == nil {
		t.Errorf("SetPGDensity with bad length did not error")
	}
	if err := m.SetPGDensity(nil); err != nil {
		t.Errorf("SetPGDensity(nil) must clear without error, got %v", err)
	}
}

func TestPGDensityRaisesPenalty(t *testing.T) {
	d := clusterDesign(t, 32)
	m := New(d, 32)
	m.Compute()
	base := m.Penalty()

	// Add PG density right under the cluster.
	pg := make([]float64, m.NX*m.NY)
	bx := int((122 - 0) / m.BinW())
	by := int((122 - 0) / m.BinH())
	pg[by*m.NX+bx] = m.BinW() * m.BinH() * 0.8
	m.SetPGDensity(pg)
	m.Compute()
	withPG := m.Penalty()
	if withPG <= base {
		t.Errorf("PG density under cluster did not raise penalty: %v <= %v", withPG, base)
	}
	m.SetPGDensity(nil)
	m.Compute()
	cleared := m.Penalty()
	if math.Abs(cleared-base) > 1e-9*math.Abs(base) {
		t.Errorf("clearing PG density did not restore penalty: %v vs %v", cleared, base)
	}
}

func TestFillersCreated(t *testing.T) {
	d := synth.MustGenerate("tiny_open") // utilization 0.40 → fillers needed
	m := New(d, 32)
	if m.NumFillers() == 0 {
		t.Fatalf("no fillers created for low-utilization design")
	}
	// Fillers must be inside the die.
	for k := 0; k < m.NumFillers(); k++ {
		x, y := m.FillerPos[2*k], m.FillerPos[2*k+1]
		if !d.Die.ContainsClosed(geom.Point{X: x, Y: y}) {
			t.Errorf("filler %d at (%v,%v) outside die", k, x, y)
		}
	}
}

func TestClampFillers(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	m := New(d, 32)
	if m.NumFillers() == 0 {
		t.Skip("no fillers")
	}
	m.FillerPos[0] = -1000
	m.FillerPos[1] = 1e9
	m.ClampFillers()
	if m.FillerPos[0] < d.Die.Lo.X || m.FillerPos[1] > d.Die.Hi.Y {
		t.Errorf("fillers not clamped: (%v,%v)", m.FillerPos[0], m.FillerPos[1])
	}
}

func TestMacroRepelsCells(t *testing.T) {
	// A big fixed macro creates a field pushing a nearby cell away from it.
	b := netlist.NewBuilder("m", geom.NewRect(0, 0, 256, 256), 8, 1)
	b.AddCell("macro", netlist.Macro, 128, 128, 80, 80)
	b.AddCell("c", netlist.StdCell, 178, 128, 2, 8) // just right of macro edge (168)
	b.SetTargetDensity(0.9)
	d := b.MustBuild()
	m := New(d, 32)
	m.Compute()
	ex, _ := m.Field(d.Cells[1].X, d.Cells[1].Y)
	if ex <= 0 {
		t.Errorf("cell right of macro feels Ex=%v, want positive (pushed right)", ex)
	}
}

func TestFillerGradLengthChecked(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	m := New(d, 32)
	m.Compute()
	defer func() {
		if recover() == nil {
			t.Errorf("AccumFillerGrad with bad length did not panic")
		}
	}()
	m.AccumFillerGrad(make([]float64, 1), 1)
}

func TestOverflowSmallForUniformSpread(t *testing.T) {
	// Cells (and fillers) spread quasi-uniformly at low utilization →
	// overflow far below the fully clustered case.
	b := netlist.NewBuilder("u", geom.NewRect(0, 0, 256, 256), 8, 1)
	for i := 0; i < 64; i++ {
		b.AddCell("c", netlist.StdCell, 16+float64(i%8)*32, 16+float64(i/8)*32, 2, 8)
	}
	b.SetTargetDensity(0.6)
	d := b.MustBuild()
	m := New(d, 32)
	m.Compute()
	if ovf := m.Overflow(); ovf > 0.15 {
		t.Errorf("uniform low-density spread has overflow %v, want < 0.15", ovf)
	}
}

func BenchmarkComputeTinyHot(b *testing.B) {
	d := synth.MustGenerate("tiny_hot")
	m := New(d, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Compute()
	}
}
