// Package density implements the electrostatics-based density penalty D(x,y)
// of ePlace (paper Sec. II-A): movable cells, filler cells and fixed macros
// are rasterized as charge onto a power-of-two bin grid, the Poisson solver
// turns the charge into a potential ψ and field E = −∇ψ, and the penalty
// ½·Σ A_i·ψ_i with gradient −A_i·E(x_i) drives cells out of dense regions.
//
// Two paper-specific hooks extend the plain ePlace model:
//
//   - per-cell inflation ratios (Sec. III-B): the momentum-based cell
//     inflation multiplies each movable cell's charge area during
//     rasterization only, so congested cells push harder;
//   - an additive PG-rail density D^PG (Sec. III-C, Eq. 13–15) supplied per
//     bin by the pgrail package, re-evaluated every routability iteration.
package density

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/parallel"
	"repro/internal/poisson"
	"repro/internal/spectral"
)

// Model holds the bin grid, the Poisson solver, filler cells and scratch
// buffers for density evaluation of one design.
//
// Rasterization and the penalty/overflow reductions run over the
// internal/parallel shard layer: splats are cache-blocked into bin tiles
// whose per-bin summation order reproduces the fixed shard tree (see
// Compute), so every worker count produces byte-identical fields,
// penalties and gradients.
type Model struct {
	// Workers caps the goroutines used per evaluation (rasterization,
	// penalty, gradients and the embedded Poisson solve); 0 selects
	// runtime.NumCPU(), 1 runs fully serial. Results are byte-identical
	// for any setting.
	Workers int

	// RhoHook, when non-nil, is invoked with the normalized charge-density
	// grid after rasterization and immediately before the Poisson solve. It
	// is a fault-injection / diagnostics seam (the guard chaos suite poisons
	// one bin through it); production runs leave it nil.
	RhoHook func(rho []float64)

	d      *netlist.Design
	NX, NY int
	binW   float64
	binH   float64

	solver *poisson.Solver
	grid   *poisson.Grid

	rho      []float64 // charge density, rebuilt each Compute
	fixedRho []float64 // precomputed macro/blockage charge
	pgRho    []float64 // PG-rail additive density (Eq. 14), set externally
	movArea  []float64 // per-bin movable+filler area (for overflow)
	freeBin  []float64 // per-bin free area = binArea − fixed overlap

	// Cache-blocked rasterization state: the bin grid is partitioned into
	// tileBins×tileBins tiles, each Compute builds per-tile charge lists,
	// and tiles are splatted independently (disjoint bin writes, no merge).
	// See Compute for the determinism argument.
	tpx, tpy    int // tiles per axis
	cellIndex   tileIndex
	fillerIndex tileIndex
	tileScratch [parallel.NumShards][]float64 // per-worker tile accumulator
	stats       parallel.Timing

	inflation []float64 // per-cell inflation ratio r_i (movables only used)

	// Fillers occupy free space so real cells stay compact (ePlace).
	FillerW, FillerH float64
	FillerPos        []float64 // [x0,y0,x1,y1,...] centers
	fillerArea       float64   // area of one filler

	// activeFillers counts the fillers currently rasterized. When cells
	// inflate, the extra charge is paid for by deactivating fillers so the
	// total charge stays at the density target and the problem remains
	// feasible (the standard RePlAce/DREAMPlace mechanism).
	activeFillers int

	baseMovableArea  float64 // uninflated movable area
	totalMovableArea float64
}

// New creates a density model with a grid of roughly gridHint bins on the
// longer die axis (rounded up to powers of two, minimum 16).
func New(d *netlist.Design, gridHint int) *Model {
	if gridHint < 16 {
		gridHint = 16
	}
	nx := spectral.NextPow2(gridHint)
	ny := nx
	m := &Model{
		d:    d,
		NX:   nx,
		NY:   ny,
		binW: d.Die.W() / float64(nx),
		binH: d.Die.H() / float64(ny),
	}
	solver, err := poisson.NewSolver(nx, ny)
	if err != nil {
		// nx and ny come from NextPow2 above; a failure here is a programming
		// error in this constructor, not a caller mistake.
		panic(err)
	}
	m.solver = solver
	m.grid = m.solver.NewGrid()
	n := nx * ny
	m.rho = make([]float64, n)
	m.fixedRho = make([]float64, n)
	m.pgRho = make([]float64, n)
	m.movArea = make([]float64, n)
	m.freeBin = make([]float64, n)
	m.tpx = (nx + tileBins - 1) / tileBins
	m.tpy = (ny + tileBins - 1) / tileBins
	for s := range m.tileScratch {
		m.tileScratch[s] = make([]float64, tileBins*tileBins)
	}
	m.inflation = make([]float64, len(d.Cells))
	for i := range m.inflation {
		m.inflation[i] = 1
	}
	m.precomputeFixed()
	m.buildFillers()
	return m
}

// Stats returns the accumulated wall/busy time of the model's own parallel
// sections — rasterization, penalty, gradient and overflow loops, excluding
// the embedded Poisson solve (telemetry: the parallel.density speedup gauge).
func (m *Model) Stats() parallel.Timing { return m.stats }

// SolverStats returns the timing of the embedded Poisson solver's parallel
// sections (telemetry: the parallel.poisson speedup gauge).
func (m *Model) SolverStats() parallel.Timing { return m.solver.Stats() }

// BinW returns the bin width.
func (m *Model) BinW() float64 { return m.binW }

// BinH returns the bin height.
func (m *Model) BinH() float64 { return m.binH }

// precomputeFixed rasterizes macros as full-density fixed charge and derives
// the per-bin free area.
func (m *Model) precomputeFixed() {
	binArea := m.binW * m.binH
	for i := range m.freeBin {
		m.freeBin[i] = binArea
	}
	for ci := range m.d.Cells {
		c := &m.d.Cells[ci]
		if c.Kind != netlist.Macro {
			continue
		}
		m.splat(m.fixedRho, c.Rect(), 1, false)
	}
	for i := range m.fixedRho {
		if m.fixedRho[i] > binArea {
			m.fixedRho[i] = binArea
		}
		m.freeBin[i] = binArea - m.fixedRho[i]
	}
}

// buildFillers creates filler cells totalling targetDensity·freeArea minus
// the movable area, uniformly sprinkled over free bins (deterministically).
func (m *Model) buildFillers() {
	var freeArea float64
	for _, f := range m.freeBin {
		freeArea += f
	}
	var movArea, movW float64
	var movN int
	for i := range m.d.Cells {
		c := &m.d.Cells[i]
		if c.Movable() {
			movArea += c.Area()
			movW += c.W
			movN++
		}
	}
	m.totalMovableArea = movArea
	m.baseMovableArea = movArea
	target := m.d.TargetDensity
	if target <= 0 {
		target = 0.9
	}
	fillerTotal := target*freeArea - movArea
	if fillerTotal <= 0 || movN == 0 {
		return
	}
	m.FillerW = movW / float64(movN)
	m.FillerH = m.d.RowHeight
	m.fillerArea = m.FillerW * m.FillerH
	n := int(fillerTotal / m.fillerArea)
	if n <= 0 {
		return
	}
	// Halton-like deterministic low-discrepancy sprinkle over free space.
	m.FillerPos = make([]float64, 0, 2*n)
	placed := 0
	for k := 1; placed < n && k < 50*n+100; k++ {
		x := m.d.Die.Lo.X + halton(k, 2)*m.d.Die.W()
		y := m.d.Die.Lo.Y + halton(k, 3)*m.d.Die.H()
		bx, by := m.binAt(x, y)
		if m.freeBin[by*m.NX+bx] < 0.5*m.binW*m.binH {
			continue // mostly blocked bin
		}
		m.FillerPos = append(m.FillerPos, x, y)
		placed++
	}
	// Fillers count as movable charge in the overflow normalization too.
	m.activeFillers = m.NumFillers()
	m.totalMovableArea += m.fillerArea * float64(m.NumFillers())
}

func halton(i, base int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(base)
		r += f * float64(i%base)
		i /= base
	}
	return r
}

// NumFillers returns the filler cell count.
func (m *Model) NumFillers() int { return len(m.FillerPos) / 2 }

// SetInflation sets the inflation ratio of one cell (movables only matter).
func (m *Model) SetInflation(cell int, r float64) { m.inflation[cell] = r }

// SetInflations replaces all inflation ratios; len must equal len(Cells)
// or an error is returned (an API-boundary condition the caller can cause).
// The filler population is shrunk by the total inflation delta so the total
// movable charge stays at the density target.
func (m *Model) SetInflations(r []float64) error {
	if len(r) != len(m.inflation) {
		return fmt.Errorf("density: %d inflation ratios for %d cells", len(r), len(m.inflation))
	}
	copy(m.inflation, r)
	m.rebalanceFillers()
	return nil
}

// rebalanceFillers deactivates enough fillers to pay for the current
// inflation surplus Σ(r_i−1)·A_i (clamped to the available filler pool).
func (m *Model) rebalanceFillers() {
	if m.fillerArea <= 0 || m.NumFillers() == 0 {
		return
	}
	var extra float64
	for ci := range m.d.Cells {
		c := &m.d.Cells[ci]
		if !c.Movable() {
			continue
		}
		if ri := m.inflation[ci]; ri > 1 {
			extra += (ri - 1) * c.Area()
		}
	}
	drop := int(extra / m.fillerArea)
	m.activeFillers = m.NumFillers() - drop
	if m.activeFillers < 0 {
		m.activeFillers = 0
	}
}

// ActiveFillers returns the number of fillers currently rasterized.
func (m *Model) ActiveFillers() int { return m.activeFillers }

// Inflation returns the current inflation ratio of a cell.
func (m *Model) Inflation(cell int) float64 { return m.inflation[cell] }

// PGDensity returns a copy of the current PG-rail additive bin density
// (what the last SetPGDensity installed; all zeros initially). Together
// with the inflation ratios and filler positions it completes the model's
// externally-set state for checkpointing.
func (m *Model) PGDensity() []float64 {
	return append([]float64(nil), m.pgRho...)
}

// SetPGDensity replaces the PG-rail additive bin density (Eq. 14). The slice
// must have NX·NY entries expressed as area per bin (same unit as cell
// overlap areas) or an error is returned; pass nil to clear.
func (m *Model) SetPGDensity(pg []float64) error {
	if pg == nil {
		for i := range m.pgRho {
			m.pgRho[i] = 0
		}
		return nil
	}
	if len(pg) != len(m.pgRho) {
		return fmt.Errorf("density: PG density has %d bins, grid is %dx%d", len(pg), m.NX, m.NY)
	}
	copy(m.pgRho, pg)
	return nil
}

func (m *Model) binAt(x, y float64) (int, int) {
	bx := int((x - m.d.Die.Lo.X) / m.binW)
	by := int((y - m.d.Die.Lo.Y) / m.binH)
	return geom.ClampInt(bx, 0, m.NX-1), geom.ClampInt(by, 0, m.NY-1)
}

// splat adds the (possibly smoothed) overlap area of r into the target bin
// array, optionally with area-preserving minimum-size smoothing: cells
// smaller than a bin are expanded to bin size with proportionally reduced
// density so the field stays smooth (ePlace's local smoothing).
func (m *Model) splat(dst []float64, r geom.Rect, scale float64, smooth bool) {
	if smooth {
		r, scale = m.smoothed(r, scale)
	}
	lo := r.Lo
	hi := r.Hi
	bx0 := geom.ClampInt(int((lo.X-m.d.Die.Lo.X)/m.binW), 0, m.NX-1)
	bx1 := geom.ClampInt(int((hi.X-m.d.Die.Lo.X)/m.binW), 0, m.NX-1)
	by0 := geom.ClampInt(int((lo.Y-m.d.Die.Lo.Y)/m.binH), 0, m.NY-1)
	by1 := geom.ClampInt(int((hi.Y-m.d.Die.Lo.Y)/m.binH), 0, m.NY-1)
	for by := by0; by <= by1; by++ {
		y0 := m.d.Die.Lo.Y + float64(by)*m.binH
		oy := geom.OverlapLen(lo.Y, hi.Y, y0, y0+m.binH)
		if oy <= 0 {
			continue
		}
		for bx := bx0; bx <= bx1; bx++ {
			x0 := m.d.Die.Lo.X + float64(bx)*m.binW
			ox := geom.OverlapLen(lo.X, hi.X, x0, x0+m.binW)
			if ox <= 0 {
				continue
			}
			dst[by*m.NX+bx] += ox * oy * scale
		}
	}
}

// smoothed applies ePlace's area-preserving minimum-size smoothing: rects
// smaller than a bin are expanded to bin size with proportionally reduced
// density. The rect is always rebuilt around its center (even when no axis
// expands) so the arithmetic matches the historical splat smooth branch
// bit for bit.
func (m *Model) smoothed(r geom.Rect, scale float64) (geom.Rect, float64) {
	w, h := r.W(), r.H()
	cx, cy := r.Center().X, r.Center().Y
	if w < m.binW {
		scale *= w / m.binW
		w = m.binW
	}
	if h < m.binH {
		scale *= h / m.binH
		h = m.binH
	}
	return geom.NewRect(cx-w/2, cy-h/2, cx+w/2, cy+h/2), scale
}

// cellCharge returns the smoothed charge rect and density scale of one
// movable cell at its current position and inflation ratio. Inflation
// scales the charge area (paper: "the cell size is proportionally inflated
// during density calculation").
func (m *Model) cellCharge(ci int) (geom.Rect, float64) {
	c := &m.d.Cells[ci]
	r := m.inflation[ci]
	if r <= 0 {
		r = 1
	}
	w := c.W * math.Sqrt(r)
	h := c.H * math.Sqrt(r)
	return m.smoothed(geom.NewRect(c.X-w/2, c.Y-h/2, c.X+w/2, c.Y+h/2), 1)
}

// fillerCharge returns the smoothed charge rect and density scale of one
// filler cell.
func (m *Model) fillerCharge(k int) (geom.Rect, float64) {
	x, y := m.FillerPos[2*k], m.FillerPos[2*k+1]
	return m.smoothed(geom.NewRect(x-m.FillerW/2, y-m.FillerH/2, x+m.FillerW/2, y+m.FillerH/2), 1)
}

// binBBox returns the inclusive bin bounding box a charge rect touches,
// clamped to the grid — the same clamping the splat loop applies.
func (m *Model) binBBox(r geom.Rect) (bx0, bx1, by0, by1 int) {
	bx0 = geom.ClampInt(int((r.Lo.X-m.d.Die.Lo.X)/m.binW), 0, m.NX-1)
	bx1 = geom.ClampInt(int((r.Hi.X-m.d.Die.Lo.X)/m.binW), 0, m.NX-1)
	by0 = geom.ClampInt(int((r.Lo.Y-m.d.Die.Lo.Y)/m.binH), 0, m.NY-1)
	by1 = geom.ClampInt(int((r.Hi.Y-m.d.Die.Lo.Y)/m.binH), 0, m.NY-1)
	return
}

// splatTile adds the overlap of an already-smoothed charge rect into a
// tile-local accumulator, visiting only bins inside the tile. The per-bin
// overlap arithmetic is identical to splat; bins of the rect outside this
// tile are splatted by the tiles that own them.
func (m *Model) splatTile(dst []float64, r geom.Rect, scale float64, tbx0, tby0, bw, bh int) {
	bx0, bx1, by0, by1 := m.binBBox(r)
	if bx0 < tbx0 {
		bx0 = tbx0
	}
	if by0 < tby0 {
		by0 = tby0
	}
	if v := tbx0 + bw - 1; bx1 > v {
		bx1 = v
	}
	if v := tby0 + bh - 1; by1 > v {
		by1 = v
	}
	for by := by0; by <= by1; by++ {
		y0 := m.d.Die.Lo.Y + float64(by)*m.binH
		oy := geom.OverlapLen(r.Lo.Y, r.Hi.Y, y0, y0+m.binH)
		if oy <= 0 {
			continue
		}
		row := (by-tby0)*bw - tbx0
		for bx := bx0; bx <= bx1; bx++ {
			x0 := m.d.Die.Lo.X + float64(bx)*m.binW
			ox := geom.OverlapLen(r.Lo.X, r.Hi.X, x0, x0+m.binW)
			if ox <= 0 {
				continue
			}
			dst[row+bx] += ox * oy * scale
		}
	}
}

// tileBins is the tile edge length in bins. A tile accumulator is
// tileBins²·8 bytes = 8 KiB — two fit in L1, so the splat inner loop hits
// cache no matter how large the full grid is (a 1M-cell design uses a
// 512×512 grid: 2 MiB per field, far beyond L1/L2 when splatted at random).
const tileBins = 32

// tileIndex is a per-Compute CSR index mapping each tile to the charges
// whose bin bounding box intersects it, segmented by parallel shard. Within
// a (tile, shard) segment items appear in ascending index order, which is
// what makes the tiled summation reproduce the flat per-shard order.
// Buffers are grow-only and reused across Computes.
type tileIndex struct {
	cnt   [parallel.NumShards][]int32 // per-shard per-tile charge counts
	start [parallel.NumShards][]int32 // segment start in list
	end   [parallel.NumShards][]int32 // segment end (filled during pass 2)
	list  []int32                     // concatenated per-tile, per-shard item lists
}

func (ti *tileIndex) ensure(nt int) {
	for s := 0; s < parallel.NumShards; s++ {
		if cap(ti.cnt[s]) < nt {
			ti.cnt[s] = make([]int32, nt)
			ti.start[s] = make([]int32, nt)
			ti.end[s] = make([]int32, nt)
		}
		ti.cnt[s] = ti.cnt[s][:nt]
		ti.start[s] = ti.start[s][:nt]
		ti.end[s] = ti.end[s][:nt]
		for t := range ti.cnt[s] {
			ti.cnt[s][t] = 0
		}
	}
}

// build populates the index for n items whose tile span is given by span
// (ok=false items are skipped): a parallel count pass, a serial prefix sum,
// and a parallel fill pass. Shard s writes only its own rows and segments,
// so both passes are race-free, and iterating a shard's contiguous item
// range in order makes every segment ascending.
func (ti *tileIndex) build(workers, nt, n, tpx int, span func(i int) (tx0, ty0, tx1, ty1 int, ok bool)) parallel.Timing {
	ti.ensure(nt)
	stats := parallel.For(workers, n, func(shard, lo, hi int) {
		cnt := ti.cnt[shard]
		for i := lo; i < hi; i++ {
			tx0, ty0, tx1, ty1, ok := span(i)
			if !ok {
				continue
			}
			for ty := ty0; ty <= ty1; ty++ {
				for tx := tx0; tx <= tx1; tx++ {
					cnt[ty*tpx+tx]++
				}
			}
		}
	})
	var pos int32
	for t := 0; t < nt; t++ {
		for s := 0; s < parallel.NumShards; s++ {
			ti.start[s][t] = pos
			ti.end[s][t] = pos
			pos += ti.cnt[s][t]
		}
	}
	if cap(ti.list) < int(pos) {
		ti.list = make([]int32, pos)
	}
	ti.list = ti.list[:pos]
	stats.Add(parallel.For(workers, n, func(shard, lo, hi int) {
		end := ti.end[shard]
		for i := lo; i < hi; i++ {
			tx0, ty0, tx1, ty1, ok := span(i)
			if !ok {
				continue
			}
			for ty := ty0; ty <= ty1; ty++ {
				for tx := tx0; tx <= tx1; tx++ {
					t := ty*tpx + tx
					ti.list[end[t]] = int32(i)
					end[t]++
				}
			}
		}
	}))
	return stats
}

// Compute rasterizes the current cell and filler positions and solves the
// Poisson equation. It must be called before Penalty, Overflow or the
// gradient accessors.
//
// Rasterization is cache-blocked: charges are bucketed into 32×32-bin
// tiles, then tiles are splatted in parallel with disjoint bin writes —
// no full-grid shard buffers to zero and merge, and the inner loop stays
// inside an 8 KiB accumulator regardless of grid size.
//
// The result is bit-identical to the historical per-shard merge for every
// worker count: per bin, the charge is still
//
//	fixed + P₀ + P₁ + … + P₁₅
//
// with partial P_s summed from zero over shard s's movable cells then
// shard s's fillers in ascending index order — the tile loop just computes
// each P_s restricted to its own bins (tiles partition the grid, and the
// per-bin overlap arithmetic is shared with splat). All splat
// contributions are ≥ 0, so skipping an empty (tile, shard) segment is
// exact: it only elides additions of +0.0.
func (m *Model) Compute() {
	nCells := len(m.d.Cells)
	nt := m.tpx * m.tpy
	m.stats.Add(m.cellIndex.build(m.Workers, nt, nCells, m.tpx,
		func(ci int) (int, int, int, int, bool) {
			if !m.d.Cells[ci].Movable() {
				return 0, 0, 0, 0, false
			}
			rect, _ := m.cellCharge(ci)
			bx0, bx1, by0, by1 := m.binBBox(rect)
			return bx0 / tileBins, by0 / tileBins, bx1 / tileBins, by1 / tileBins, true
		}))
	m.stats.Add(m.fillerIndex.build(m.Workers, nt, m.activeFillers, m.tpx,
		func(k int) (int, int, int, int, bool) {
			rect, _ := m.fillerCharge(k)
			bx0, bx1, by0, by1 := m.binBBox(rect)
			return bx0 / tileBins, by0 / tileBins, bx1 / tileBins, by1 / tileBins, true
		}))
	m.stats.Add(parallel.For(m.Workers, nt, func(worker, lo, hi int) {
		scratch := m.tileScratch[worker]
		for t := lo; t < hi; t++ {
			tbx0 := (t % m.tpx) * tileBins
			tby0 := (t / m.tpx) * tileBins
			bw := m.NX - tbx0
			if bw > tileBins {
				bw = tileBins
			}
			bh := m.NY - tby0
			if bh > tileBins {
				bh = tileBins
			}
			for yy := 0; yy < bh; yy++ {
				row := (tby0+yy)*m.NX + tbx0
				copy(m.rho[row:row+bw], m.fixedRho[row:row+bw])
				for xx := 0; xx < bw; xx++ {
					m.movArea[row+xx] = 0
				}
			}
			for s := 0; s < parallel.NumShards; s++ {
				cLo, cHi := m.cellIndex.start[s][t], m.cellIndex.end[s][t]
				fLo, fHi := m.fillerIndex.start[s][t], m.fillerIndex.end[s][t]
				if cLo == cHi && fLo == fHi {
					continue
				}
				part := scratch[:bw*bh]
				for i := range part {
					part[i] = 0
				}
				for _, ci := range m.cellIndex.list[cLo:cHi] {
					rect, scale := m.cellCharge(int(ci))
					m.splatTile(part, rect, scale, tbx0, tby0, bw, bh)
				}
				for _, k := range m.fillerIndex.list[fLo:fHi] {
					rect, scale := m.fillerCharge(int(k))
					m.splatTile(part, rect, scale, tbx0, tby0, bw, bh)
				}
				for yy := 0; yy < bh; yy++ {
					srow := yy * bw
					drow := (tby0+yy)*m.NX + tbx0
					for xx := 0; xx < bw; xx++ {
						v := part[srow+xx]
						m.rho[drow+xx] += v
						m.movArea[drow+xx] += v
					}
				}
			}
		}
	}))
	for i := range m.rho {
		m.rho[i] += m.pgRho[i]
	}
	// Normalize to density (area per bin / bin area) so the field scale is
	// grid-independent.
	binArea := m.binW * m.binH
	for i := range m.rho {
		m.rho[i] /= binArea
	}
	if m.RhoHook != nil {
		m.RhoHook(m.rho)
	}
	m.solver.Workers = m.Workers
	m.solver.Solve(m.rho, m.grid)
}

// ScanNonFinite scans the charge density and the solved Poisson field for
// NaN/±Inf values, returning the name of the first offending array, the bin
// index and the value; ok is true when everything is finite. This is the
// guard layer's density/Poisson-field sentinel — O(4·NX·NY), trivially
// cheap next to the solve itself.
func (m *Model) ScanNonFinite() (field string, index int, value float64, ok bool) {
	for _, s := range []struct {
		name string
		v    []float64
	}{{"rho", m.rho}, {"psi", m.grid.Psi}, {"ex", m.grid.Ex}, {"ey", m.grid.Ey}} {
		for i, x := range s.v {
			if x-x != 0 { // NaN or ±Inf
				return s.name, i, x, false
			}
		}
	}
	return "", -1, 0, true
}

// sample bilinearly interpolates a grid field at (x, y), with bin-center
// alignment and edge clamping.
func (m *Model) sample(f []float64, x, y float64) float64 {
	fx := (x-m.d.Die.Lo.X)/m.binW - 0.5
	fy := (y-m.d.Die.Lo.Y)/m.binH - 0.5
	x0 := int(math.Floor(fx))
	y0 := int(math.Floor(fy))
	tx := fx - float64(x0)
	ty := fy - float64(y0)
	x0 = geom.ClampInt(x0, 0, m.NX-1)
	y0 = geom.ClampInt(y0, 0, m.NY-1)
	x1 := geom.ClampInt(x0+1, 0, m.NX-1)
	y1 := geom.ClampInt(y0+1, 0, m.NY-1)
	tx = geom.Clamp(tx, 0, 1)
	ty = geom.Clamp(ty, 0, 1)
	f00 := f[y0*m.NX+x0]
	f10 := f[y0*m.NX+x1]
	f01 := f[y1*m.NX+x0]
	f11 := f[y1*m.NX+x1]
	return f00*(1-tx)*(1-ty) + f10*tx*(1-ty) + f01*(1-tx)*ty + f11*tx*ty
}

// Potential returns ψ interpolated at (x, y). Compute must have been called.
func (m *Model) Potential(x, y float64) float64 { return m.sample(m.grid.Psi, x, y) }

// Field returns E = −∇ψ interpolated at (x, y).
func (m *Model) Field(x, y float64) (float64, float64) {
	return m.sample(m.grid.Ex, x, y), m.sample(m.grid.Ey, x, y)
}

// Penalty returns D = ½·Σ_i A_i·ψ(x_i) over movable cells and fillers, with
// A_i the inflated charge area. The sum is reduced per shard in fixed order,
// so it is byte-identical for every worker count.
func (m *Model) Penalty() float64 {
	var cellParts, fillParts [parallel.NumShards]float64
	m.stats.Add(parallel.For(m.Workers, len(m.d.Cells), func(shard, lo, hi int) {
		var sum float64
		for ci := lo; ci < hi; ci++ {
			c := &m.d.Cells[ci]
			if !c.Movable() {
				continue
			}
			a := c.Area() * m.inflation[ci]
			sum += a * m.Potential(c.X, c.Y)
		}
		cellParts[shard] = sum
	}))
	m.stats.Add(parallel.For(m.Workers, m.activeFillers, func(shard, lo, hi int) {
		var sum float64
		for k := lo; k < hi; k++ {
			sum += m.fillerArea * m.Potential(m.FillerPos[2*k], m.FillerPos[2*k+1])
		}
		fillParts[shard] = sum
	}))
	return (parallel.SumShards(&cellParts) + parallel.SumShards(&fillParts)) / 2
}

// AccumCellGrad adds scale·∂D/∂(x_i,y_i) = −scale·A_i·E(x_i) for every
// movable cell into grad (layout [gx0,gy0,...], length 2·len(Cells)).
// Writes are disjoint per cell, so the parallel form is bitwise-identical
// to serial.
func (m *Model) AccumCellGrad(grad []float64, scale float64) {
	if len(grad) != 2*len(m.d.Cells) {
		panic("density: cell gradient length mismatch")
	}
	m.stats.Add(parallel.For(m.Workers, len(m.d.Cells), func(_, lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			c := &m.d.Cells[ci]
			if !c.Movable() {
				continue
			}
			a := c.Area() * m.inflation[ci]
			ex, ey := m.Field(c.X, c.Y)
			grad[2*ci] -= scale * a * ex
			grad[2*ci+1] -= scale * a * ey
		}
	}))
}

// AccumFillerGrad adds scale·∂D/∂(filler position) into fgrad (length
// 2·NumFillers). Disjoint per-filler writes, bitwise-identical to serial.
func (m *Model) AccumFillerGrad(fgrad []float64, scale float64) {
	if len(fgrad) != len(m.FillerPos) {
		panic("density: filler gradient length mismatch")
	}
	m.stats.Add(parallel.For(m.Workers, m.activeFillers, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			ex, ey := m.Field(m.FillerPos[2*k], m.FillerPos[2*k+1])
			fgrad[2*k] -= scale * m.fillerArea * ex
			fgrad[2*k+1] -= scale * m.fillerArea * ey
		}
	}))
}

// Overflow returns the density overflow ratio
// Σ_b max(0, movArea_b − target·freeArea_b) / totalMovableArea, the ePlace
// convergence metric that also drives the γ and λ schedules. Bin-parallel
// with a fixed-order shard reduction.
func (m *Model) Overflow() float64 {
	if m.totalMovableArea == 0 {
		return 0
	}
	target := m.d.TargetDensity
	if target <= 0 {
		target = 0.9
	}
	var parts [parallel.NumShards]float64
	m.stats.Add(parallel.For(m.Workers, len(m.movArea), func(shard, lo, hi int) {
		var ovf float64
		for i := lo; i < hi; i++ {
			if ex := m.movArea[i] - target*m.freeBin[i]; ex > 0 {
				ovf += ex
			}
		}
		parts[shard] = ovf
	}))
	denom := m.baseMovableArea + m.fillerArea*float64(m.activeFillers)
	if denom <= 0 {
		denom = m.totalMovableArea
	}
	return parallel.SumShards(&parts) / denom
}

// CellDensityMap returns a copy of the per-bin movable+filler area map from
// the last Compute (used by the Fig. 1 congestion decomposition).
func (m *Model) CellDensityMap() []float64 {
	out := make([]float64, len(m.movArea))
	copy(out, m.movArea)
	return out
}

// ClampFillers keeps all fillers inside the die.
func (m *Model) ClampFillers() {
	for k := 0; k < m.NumFillers(); k++ {
		m.FillerPos[2*k] = geom.Clamp(m.FillerPos[2*k], m.d.Die.Lo.X+m.FillerW/2, m.d.Die.Hi.X-m.FillerW/2)
		m.FillerPos[2*k+1] = geom.Clamp(m.FillerPos[2*k+1], m.d.Die.Lo.Y+m.FillerH/2, m.d.Die.Hi.Y-m.FillerH/2)
	}
}
