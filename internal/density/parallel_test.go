package density

import (
	"math"
	"testing"

	"repro/internal/parallel"
)

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestDensityBitwiseIdenticalAcrossWorkers: splats merge in fixed shard
// order and the reductions use the fixed shard tree, so the charge field,
// penalty, overflow and gradients must be bit-for-bit identical for every
// worker count.
func TestDensityBitwiseIdenticalAcrossWorkers(t *testing.T) {
	type result struct {
		rho, mov     []float64
		grad, fgrad  []float64
		penalty, ovf float64
	}
	run := func(workers int) result {
		d := clusterDesign(t, 64)
		m := New(d, 32)
		m.Workers = workers
		m.Compute()
		grad := make([]float64, 2*len(d.Cells))
		m.AccumCellGrad(grad, 1.5)
		fgrad := make([]float64, len(m.FillerPos))
		m.AccumFillerGrad(fgrad, 1.5)
		return result{
			rho:     append([]float64(nil), m.rho...),
			mov:     append([]float64(nil), m.movArea...),
			grad:    grad,
			fgrad:   fgrad,
			penalty: m.Penalty(),
			ovf:     m.Overflow(),
		}
	}
	ref := run(1)
	for _, w := range []int{2, 3, parallel.NumShards, 0} {
		got := run(w)
		if !bitsEqual(got.rho, ref.rho) {
			t.Errorf("workers=%d: rho differs bitwise from serial", w)
		}
		if !bitsEqual(got.mov, ref.mov) {
			t.Errorf("workers=%d: movArea differs bitwise from serial", w)
		}
		if !bitsEqual(got.grad, ref.grad) {
			t.Errorf("workers=%d: cell gradient differs bitwise from serial", w)
		}
		if !bitsEqual(got.fgrad, ref.fgrad) {
			t.Errorf("workers=%d: filler gradient differs bitwise from serial", w)
		}
		if math.Float64bits(got.penalty) != math.Float64bits(ref.penalty) {
			t.Errorf("workers=%d: penalty %v != serial %v", w, got.penalty, ref.penalty)
		}
		if math.Float64bits(got.ovf) != math.Float64bits(ref.ovf) {
			t.Errorf("workers=%d: overflow %v != serial %v", w, got.ovf, ref.ovf)
		}
	}
}

// TestDensityStatsAccumulate: evaluations record their parallel-section
// cost, and the embedded solver's stats are exposed separately.
func TestDensityStatsAccumulate(t *testing.T) {
	d := clusterDesign(t, 32)
	m := New(d, 32)
	m.Compute()
	m.Penalty()
	m.Overflow()
	if m.Stats().Wall <= 0 || m.Stats().Busy <= 0 {
		t.Errorf("model stats not accumulated: %+v", m.Stats())
	}
	if m.SolverStats().Wall <= 0 {
		t.Errorf("solver stats not accumulated: %+v", m.SolverStats())
	}
}
