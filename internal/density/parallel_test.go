package density

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/synth"
)

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestDensityBitwiseIdenticalAcrossWorkers: splats merge in fixed shard
// order and the reductions use the fixed shard tree, so the charge field,
// penalty, overflow and gradients must be bit-for-bit identical for every
// worker count.
func TestDensityBitwiseIdenticalAcrossWorkers(t *testing.T) {
	type result struct {
		rho, mov     []float64
		grad, fgrad  []float64
		penalty, ovf float64
	}
	run := func(workers int) result {
		d := clusterDesign(t, 64)
		m := New(d, 32)
		m.Workers = workers
		m.Compute()
		grad := make([]float64, 2*len(d.Cells))
		m.AccumCellGrad(grad, 1.5)
		fgrad := make([]float64, len(m.FillerPos))
		m.AccumFillerGrad(fgrad, 1.5)
		return result{
			rho:     append([]float64(nil), m.rho...),
			mov:     append([]float64(nil), m.movArea...),
			grad:    grad,
			fgrad:   fgrad,
			penalty: m.Penalty(),
			ovf:     m.Overflow(),
		}
	}
	ref := run(1)
	for _, w := range []int{2, 3, parallel.NumShards, 0} {
		got := run(w)
		if !bitsEqual(got.rho, ref.rho) {
			t.Errorf("workers=%d: rho differs bitwise from serial", w)
		}
		if !bitsEqual(got.mov, ref.mov) {
			t.Errorf("workers=%d: movArea differs bitwise from serial", w)
		}
		if !bitsEqual(got.grad, ref.grad) {
			t.Errorf("workers=%d: cell gradient differs bitwise from serial", w)
		}
		if !bitsEqual(got.fgrad, ref.fgrad) {
			t.Errorf("workers=%d: filler gradient differs bitwise from serial", w)
		}
		if math.Float64bits(got.penalty) != math.Float64bits(ref.penalty) {
			t.Errorf("workers=%d: penalty %v != serial %v", w, got.penalty, ref.penalty)
		}
		if math.Float64bits(got.ovf) != math.Float64bits(ref.ovf) {
			t.Errorf("workers=%d: overflow %v != serial %v", w, got.ovf, ref.ovf)
		}
	}
}

// referenceRho rasterizes the model's current state with the historical
// flat algorithm — full-grid per-shard buffers merged in ascending shard
// order — and returns the normalized charge grid and movable-area map.
// The tiled Compute must reproduce it bit for bit.
func referenceRho(m *Model) (rho, mov []float64) {
	n := m.NX * m.NY
	shardRho := parallel.NewShards(n)
	shardMov := parallel.NewShards(n)
	for s := 0; s < parallel.NumShards; s++ {
		lo, hi := parallel.Range(s, len(m.d.Cells))
		for ci := lo; ci < hi; ci++ {
			c := &m.d.Cells[ci]
			if !c.Movable() {
				continue
			}
			r := m.inflation[ci]
			if r <= 0 {
				r = 1
			}
			w := c.W * math.Sqrt(r)
			h := c.H * math.Sqrt(r)
			rect := geom.NewRect(c.X-w/2, c.Y-h/2, c.X+w/2, c.Y+h/2)
			m.splat(shardRho[s], rect, 1, true)
			m.splat(shardMov[s], rect, 1, true)
		}
		lo, hi = parallel.Range(s, m.activeFillers)
		for k := lo; k < hi; k++ {
			x, y := m.FillerPos[2*k], m.FillerPos[2*k+1]
			rect := geom.NewRect(x-m.FillerW/2, y-m.FillerH/2, x+m.FillerW/2, y+m.FillerH/2)
			m.splat(shardRho[s], rect, 1, true)
			m.splat(shardMov[s], rect, 1, true)
		}
	}
	rho = make([]float64, n)
	copy(rho, m.fixedRho)
	parallel.MergeFloats(rho, shardRho)
	mov = make([]float64, n)
	parallel.MergeFloats(mov, shardMov)
	for i := range rho {
		rho[i] += m.pgRho[i]
	}
	binArea := m.binW * m.binH
	for i := range rho {
		rho[i] /= binArea
	}
	return rho, mov
}

// TestComputeMatchesShardMergeReference: the cache-blocked tile
// rasterization claims bit-identity with the historical full-grid
// shard-merge — including macros (fixed charge), fillers, per-cell
// inflation and PG density, on grids both smaller and larger than one
// tile. Verify the claim against an in-test reference implementation.
func TestComputeMatchesShardMergeReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		grid int
	}{
		{"single-tile", 16}, // whole grid inside one partial tile
		{"exact-tile", 32},  // grid == one full tile
		{"multi-tile", 128}, // 4×4 tiles, charges straddle tile edges
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := synth.MustGenerate("tiny_hot")
			m := New(d, tc.grid)
			for ci := range d.Cells {
				if ci%3 == 0 {
					m.SetInflation(ci, 1.7)
				}
			}
			pg := make([]float64, m.NX*m.NY)
			for i := range pg {
				if i%17 == 0 {
					pg[i] = m.BinW() * m.BinH() * 0.3
				}
			}
			if err := m.SetPGDensity(pg); err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 4, parallel.NumShards} {
				m.Workers = w
				m.Compute()
				wantRho, wantMov := referenceRho(m)
				if !bitsEqual(m.rho, wantRho) {
					t.Errorf("workers=%d: tiled rho differs bitwise from shard-merge reference", w)
				}
				if !bitsEqual(m.movArea, wantMov) {
					t.Errorf("workers=%d: tiled movArea differs bitwise from shard-merge reference", w)
				}
			}
		})
	}
}

// TestDensityStatsAccumulate: evaluations record their parallel-section
// cost, and the embedded solver's stats are exposed separately.
func TestDensityStatsAccumulate(t *testing.T) {
	d := clusterDesign(t, 32)
	m := New(d, 32)
	m.Compute()
	m.Penalty()
	m.Overflow()
	if m.Stats().Wall <= 0 || m.Stats().Busy <= 0 {
		t.Errorf("model stats not accumulated: %+v", m.Stats())
	}
	if m.SolverStats().Wall <= 0 {
		t.Errorf("solver stats not accumulated: %+v", m.SolverStats())
	}
}
