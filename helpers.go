package nmplace

import "repro/internal/geom"

func rect(x0, y0, x1, y1 float64) geom.Rect {
	return geom.NewRect(x0, y0, x1, y1)
}
