// Package nmplace is a routability-driven VLSI global placement library — a
// from-scratch Go reproduction of "Differentiable Net-Moving and Local
// Congestion Mitigation for Routability-Driven Global Placement" (Li, Wu,
// Liu, Li, Zhu — DAC 2025).
//
// The library implements the full placement flow of the paper's Fig. 2 on a
// pure-Go electrostatic placement substrate:
//
//   - an ePlace-style spectral (FFT/DCT) Poisson solver driving both the
//     cell-density force and the paper's differentiable congestion force;
//   - a 3-D Z-shape pattern global router producing the demand/capacity and
//     congestion maps (Eq. 3);
//   - the paper's three techniques: net moving via virtual cells on two-pin
//     nets (Sec. III-A, Algorithms 1–2), momentum-based cell inflation
//     (Sec. III-B, Eq. 11–12), and dynamic pin-accessibility density around
//     selected PG rails (Sec. III-C, Eq. 13–15);
//   - Abacus legalization and detailed placement;
//   - a routing-based evaluator reporting DRWL / #DRVias / #DRVs;
//   - a deterministic synthetic benchmark generator reproducing the 20
//     ISPD 2015 contest designs of the paper's Table I by name.
//
// # Quick start
//
//	d, _ := nmplace.GenerateBenchmark("fft_1")
//	res, err := nmplace.Place(d, nmplace.Options{Mode: nmplace.ModeOurs})
//	if err != nil { ... }
//	fmt.Println(res.Metrics.DRVs)
//
// The three placer modes reproduce the paper's Table I columns: ModeXplace
// (wirelength only), ModeXplaceRoute (the prior-art routability baseline)
// and ModeOurs (the paper's framework). Table II's ablation is available
// through Options.Tech.
package nmplace

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/guard"
	"repro/internal/netlist"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// Design is a placement instance: die, rows, cells, nets, pins and PG rails.
type Design = netlist.Design

// Cell is one placeable or fixed object of a Design.
type Cell = netlist.Cell

// Net is one hyperedge of the netlist.
type Net = netlist.Net

// Pin connects a cell to a net at a fixed offset from the cell center.
type Pin = netlist.Pin

// PGRail is an M2 power/ground rail segment.
type PGRail = netlist.PGRail

// Builder constructs designs programmatically; see NewBuilder.
type Builder = netlist.Builder

// Cell kind constants for Builder.AddCell.
const (
	StdCell = netlist.StdCell
	Macro   = netlist.Macro
	IOPad   = netlist.IOPad
)

// Mode selects the placer variant (the paper's Table I columns).
type Mode = core.Mode

// Placer modes.
const (
	// ModeXplace is pure wirelength-driven placement (no routability).
	ModeXplace = core.ModeWirelength
	// ModeXplaceRoute is the prior-art routability baseline: monotone cell
	// inflation plus static PG-rail density pre-adjustment.
	ModeXplaceRoute = core.ModeBaselineRoute
	// ModeOurs is the paper's framework (momentum inflation, differentiable
	// congestion with net moving, dynamic pin-accessibility density).
	ModeOurs = core.ModeOurs
)

// Techniques toggles the paper's individual contributions inside ModeOurs
// (the Table II ablation and the extra ablations of DESIGN.md).
type Techniques = core.Techniques

// Options configures a placement run; the zero value plus a Mode is a
// sensible default. See core.Options for the full field list.
type Options = core.Options

// Result reports a finished run: runtimes, per-stage HPWL and the post-route
// Metrics (DRWL, #DRVias, #DRVs).
type Result = core.Result

// Metrics is the post-route scorecard of one placement.
type Metrics = eval.Metrics

// Observer is the telemetry handle: hierarchical span traces, a metrics
// registry and per-iteration snapshots, emitted as deterministic JSONL.
// Set one on Options.Observer to instrument a run; summarize the trace
// with `go run ./cmd/tracereport`. See internal/telemetry for the schema.
type Observer = telemetry.Observer

// StageTiming is one per-stage entry of Result.StageTimings.
type StageTiming = telemetry.StageTiming

// NewObserver creates a telemetry observer writing JSONL events to sink.
// A nil sink aggregates spans and metrics in memory without writing a
// trace stream.
func NewObserver(sink io.Writer) *Observer { return telemetry.NewObserver(sink) }

// AllTechniques enables MCI, DC and DPA — the full paper configuration.
func AllTechniques() Techniques { return core.AllTechniques() }

// ErrCheckpointed is returned by PlaceContext/Resume when the run stopped
// at the scheduled Options.CheckpointAfter point after writing its state to
// Options.CheckpointPath. It signals a successful pause, not a failure.
var ErrCheckpointed = core.ErrCheckpointed

// Place runs the selected placer on d in place (cell positions are
// overwritten) and returns the run report. The flow follows the paper's
// Fig. 2: wirelength-driven global placement, the routability-driven loop,
// legalization, detailed placement, and a final routing evaluation.
func Place(d *Design, opt Options) (*Result, error) { return core.Place(d, opt) }

// PlaceContext is Place with cooperative cancellation and checkpointing:
// when ctx is cancelled the run stops within one optimizer step or one
// router round, writes a checkpoint when Options.CheckpointPath is set, and
// returns the partial Result with ctx.Err(). With Options.CheckpointAfter
// set, the run instead stops at that pipeline point with ErrCheckpointed.
func PlaceContext(ctx context.Context, d *Design, opt Options) (*Result, error) {
	return core.PlaceContext(ctx, d, opt)
}

// Resume continues a checkpointed run from the serialized state in ck,
// completing it to a final placement byte-identical to the uninterrupted
// run's. d must be the design the checkpoint was taken on; opt supplies the
// environment (Workers, Log, Observer, further checkpointing) while the
// checkpoint is authoritative for the run-defining options.
func Resume(ctx context.Context, d *Design, ck io.Reader, opt Options) (*Result, error) {
	return core.ResumeContext(ctx, d, ck, opt)
}

// ResumeFile is Resume reading the checkpoint from path. When the primary
// file fails its integrity check (ErrCheckpointCorrupt) and a rotated
// sibling path+".prev" exists, it falls back to that previous checkpoint
// automatically — the run replays a little further back but still completes
// byte-identical to the uninterrupted run.
func ResumeFile(ctx context.Context, d *Design, path string, opt Options) (*Result, error) {
	return core.ResumeFromFile(ctx, d, path, opt)
}

// BoundaryAction is the verdict of an Options.BoundaryHook at a pipeline
// stage boundary. Supervisors (schedulers, job servers) use the hook to
// preempt runs at well-defined points: BoundaryStop writes a scheduled
// checkpoint and returns ErrCheckpointed, exactly like CheckpointAfter;
// BoundaryCheckpoint persists state and continues (a durability snapshot);
// BoundaryContinue does nothing. See cmd/placed for a full supervisor built
// on this hook.
type BoundaryAction = core.BoundaryAction

// BoundaryAction values for Options.BoundaryHook.
const (
	BoundaryContinue   = core.BoundaryContinue
	BoundaryCheckpoint = core.BoundaryCheckpoint
	BoundaryStop       = core.BoundaryStop
)

// CheckpointInfo describes a checkpoint file without loading the full state:
// the pipeline cursor (Stage, Iter, Step), the run's total route-iteration
// budget and TraceSeq — the number of telemetry events emitted when the
// checkpoint was captured. After a crash, exactly the first TraceSeq trace
// lines belong before the checkpoint; truncating the trace there and
// resuming reproduces the uninterrupted run byte for byte.
type CheckpointInfo = core.CheckpointInfo

// InspectCheckpoint reads a checkpoint's header/cursor from path. A file
// that fails its integrity check returns ErrCheckpointCorrupt (the .prev
// sibling, if any, must be inspected by the caller — unlike ResumeFile this
// function does not fall back).
func InspectCheckpoint(path string) (CheckpointInfo, error) {
	return core.InspectCheckpoint(path)
}

// GuardConfig configures the numeric guardrails on Options.Guard. The zero
// value (policy GuardOff) disables all scans; see internal/guard and
// DESIGN.md §9 for the failure model.
type GuardConfig = guard.Config

// GuardPolicy selects how the pipeline reacts to a numeric-invariant
// violation: GuardOff, GuardWarn, GuardRecover or GuardFail.
type GuardPolicy = guard.Policy

// Guard policy values for GuardConfig.Policy.
const (
	GuardOff     = guard.Off
	GuardWarn    = guard.Warn
	GuardRecover = guard.Recover
	GuardFail    = guard.Fail
)

// ParseGuardPolicy converts "off", "warn", "recover" or "fail" into a
// GuardPolicy (the -guard flag syntax of cmd/placer).
func ParseGuardPolicy(s string) (GuardPolicy, error) { return guard.ParsePolicy(s) }

// Typed failures of the robustness layer. Match with errors.Is: a corrupted
// or truncated checkpoint fails Resume/ResumeFile with ErrCheckpointCorrupt;
// a design the pipeline cannot place (no movable cells, zero-area die, no
// routable net) fails Place with ErrDegenerateDesign; under GuardFail a
// sentinel hit returns ErrGuardViolation, and under GuardRecover a run that
// exhausts its retry budget returns ErrGuardBudgetExhausted.
var (
	ErrCheckpointCorrupt    = core.ErrCheckpointCorrupt
	ErrDegenerateDesign     = core.ErrDegenerateDesign
	ErrGuardViolation       = guard.ErrViolation
	ErrGuardBudgetExhausted = guard.ErrBudgetExhausted
)

// Evaluate routes d's current placement at high effort and returns the
// DRWL/#DRVias/#DRVs scorecard without moving any cell.
func Evaluate(d *Design, gridHint int) Metrics { return eval.Evaluate(d, gridHint) }

// GenerateBenchmark builds one of the named synthetic ISPD-2015-like
// benchmark designs (see BenchmarkNames; Table1Designs lists the paper's 20).
func GenerateBenchmark(name string) (*Design, error) { return synth.Generate(name) }

// BenchmarkNames lists every design the generator knows, sorted.
func BenchmarkNames() []string { return synth.Names() }

// Table1Designs lists the paper's 20 Table I designs in paper order.
func Table1Designs() []string { return synth.Table1Designs() }

// NewBuilder starts an empty design with the given name, die corners
// (x0, y0, x1, y1), row height and site width. Use the Builder to add cells,
// nets, pins and rails, then Build.
func NewBuilder(name string, x0, y0, x1, y1, rowHeight, siteWidth float64) *Builder {
	return netlist.NewBuilder(name, rect(x0, y0, x1, y1), rowHeight, siteWidth)
}

// RunTable1 places each named design with all three placers and returns the
// Table I measurement rows; WriteTable renders them. A nil designs slice
// runs the paper's full 20-design suite.
func RunTable1(designs []string, gridHint int, log io.Writer) ([]core.Row, error) {
	if designs == nil {
		designs = synth.Table1Designs()
	}
	return core.RunTable1(designs, gridHint, log)
}

// RunTable2 runs the Table II ablation (baseline, MCI, MCI+DC, MCI+DC+DPA)
// over the named designs. A nil designs slice runs the full suite.
func RunTable2(designs []string, gridHint int, log io.Writer) ([]core.Row, error) {
	if designs == nil {
		designs = synth.Table1Designs()
	}
	return core.RunTable2(designs, gridHint, log)
}

// WriteTable renders measurement rows in the paper's table layout with
// average ratios normalized to the reference mode label.
func WriteTable(w io.Writer, rows []core.Row, modeOrder []string, reference string) {
	core.WriteTable(w, rows, modeOrder, reference)
}
