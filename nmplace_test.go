package nmplace

import (
	"strings"
	"testing"
)

func TestGenerateBenchmarkAndCatalog(t *testing.T) {
	if len(Table1Designs()) != 20 {
		t.Fatalf("Table1Designs has %d entries, want 20", len(Table1Designs()))
	}
	names := BenchmarkNames()
	if len(names) < 20 {
		t.Fatalf("catalog too small: %d", len(names))
	}
	d, err := GenerateBenchmark("fft_1")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "fft_1" || len(d.Cells) == 0 {
		t.Errorf("bad design: %s with %d cells", d.Name, len(d.Cells))
	}
	if _, err := GenerateBenchmark("definitely-not-a-design"); err == nil {
		t.Errorf("unknown benchmark accepted")
	}
}

func TestPublicPlaceFlow(t *testing.T) {
	d, err := GenerateBenchmark("tiny_hot")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Place(d, Options{
		Mode:              ModeOurs,
		Tech:              AllTechniques(),
		GridHint:          32,
		MaxWLIters:        100,
		MaxRouteIters:     4,
		StepsPerRouteIter: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.DRVs < 0 || res.Metrics.DRWL <= 0 {
		t.Errorf("bad metrics: %+v", res.Metrics)
	}
	// Evaluate must agree with the run's own final metrics.
	m := Evaluate(d, 32)
	if m.DRVs != res.Metrics.DRVs {
		t.Errorf("Evaluate DRVs %d != Place metrics %d", m.DRVs, res.Metrics.DRVs)
	}
}

func TestBuilderPublicAPI(t *testing.T) {
	b := NewBuilder("custom", 0, 0, 100, 100, 8, 1)
	c0 := b.AddCell("a", StdCell, 20, 20, 2, 8)
	c1 := b.AddCell("b", StdCell, 60, 60, 2, 8)
	b.AddCell("m", Macro, 80, 20, 10, 10)
	n := b.AddNet("n", 1)
	b.Connect(c0, n, 0, 0)
	b.Connect(c1, n, 0, 0)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if d.HPWL() != 80 {
		t.Errorf("HPWL = %v, want 80", d.HPWL())
	}
}

func TestCongestionMapPublic(t *testing.T) {
	d, _ := GenerateBenchmark("tiny_hot")
	cong, nx, ny := CongestionMap(d, 32)
	if nx != 32 || ny != 32 || len(cong) != nx*ny {
		t.Fatalf("bad map dims %dx%d len %d", nx, ny, len(cong))
	}
	for i, c := range cong {
		if c < 0 {
			t.Fatalf("negative congestion at %d", i)
		}
	}
}

func TestDecomposeCongestionPublic(t *testing.T) {
	d, _ := GenerateBenchmark("tiny_hot")
	classes, nx, ny := DecomposeCongestion(d, 32)
	if len(classes) != nx*ny {
		t.Fatalf("bad class map length")
	}
	for _, c := range classes {
		if c != NotCongested && c != LocalCongestion && c != GlobalCongestion {
			t.Fatalf("unknown class %d", c)
		}
	}
}

func TestSelectPGRailsPublic(t *testing.T) {
	d, _ := GenerateBenchmark("matrix_mult_a")
	sel := SelectPGRails(d)
	if len(sel) == 0 {
		t.Fatalf("no rails selected")
	}
	var selLen, totLen float64
	for _, r := range sel {
		selLen += r.Seg.Len()
	}
	for _, r := range d.Rails {
		totLen += r.Seg.Len()
	}
	if selLen >= totLen {
		t.Errorf("selection removed nothing")
	}
}

func TestRunTablesPublic(t *testing.T) {
	var log strings.Builder
	rows, err := RunTable1([]string{"tiny_hot"}, 32, &log)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(log.String(), "tiny_hot") {
		t.Errorf("progress log empty")
	}
	var sb strings.Builder
	WriteTable(&sb, rows, []string{"xplace", "xplace-route", "ours"}, "ours")
	if !strings.Contains(sb.String(), "Avg.Ratio") {
		t.Errorf("table output missing ratios")
	}
}

func TestDefaultGridHint(t *testing.T) {
	if DefaultGridHint(100) != 32 || DefaultGridHint(5000) != 64 || DefaultGridHint(50000) != 128 {
		t.Errorf("DefaultGridHint thresholds wrong")
	}
}
